#include "adapters/idictionary.hpp"

#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "adapters/dictionary.hpp"
#include "baselines/avl_bronson.hpp"
#include "baselines/bonsai.hpp"
#include "baselines/lazy_skiplist.hpp"
#include "baselines/lockfree_bst.hpp"
#include "baselines/rcu_rbtree.hpp"
#include "baselines/relativistic_hash.hpp"
#include "citrus/citrus_cop.hpp"
#include "citrus/citrus_tree.hpp"
#include "maint/citrus_cf.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"
#include "shard/sharded_dict.hpp"

namespace citrus::adapters {

const char* to_string(ScanConsistency c) {
  switch (c) {
    case ScanConsistency::kWeak: return "weak";
    case ScanConsistency::kChunked: return "chunked";
    case ScanConsistency::kSnapshot: return "snapshot";
  }
  return "?";
}

namespace {

constexpr std::int64_t kKeyMin = std::numeric_limits<std::int64_t>::min();

// Lazy succ-chain cursor: one point read per next() call, no read-side
// section held between calls. ScanConsistency::kWeak by construction.
class WeakSnapshot final : public ISnapshot {
 public:
  explicit WeakSnapshot(const IDictionary& dict) : dict_(dict) {}

  std::optional<Entry> next() override {
    std::optional<Entry> e;
    if (!started_) {
      started_ = true;
      // kKeyMin has no strict predecessor, so probe it directly first.
      if (const auto v = dict_.find(kKeyMin)) e = Entry{kKeyMin, *v};
      else e = dict_.succ(kKeyMin);
    } else {
      e = dict_.succ(last_);
    }
    if (e) last_ = e->key;
    return e;
  }

  ScanConsistency consistency() const override {
    return ScanConsistency::kWeak;
  }

 private:
  const IDictionary& dict_;
  bool started_ = false;
  std::int64_t last_ = 0;
};

// Materialized scan result: entries were collected up front at the stated
// consistency level; iteration is just a vector walk.
class VectorSnapshot final : public ISnapshot {
 public:
  VectorSnapshot(std::vector<Entry> entries, ScanConsistency level)
      : entries_(std::move(entries)), level_(level) {}

  std::optional<Entry> next() override {
    if (pos_ == entries_.size()) return std::nullopt;
    return entries_[pos_++];
  }

  ScanConsistency consistency() const override { return level_; }

 private:
  std::vector<Entry> entries_;
  std::size_t pos_ = 0;
  ScanConsistency level_;
};

}  // namespace

// Weak mode: a succ-chain of independent point reads — a pred-chain when
// opts.reverse. Keys ascend (descend) strictly, every pair was present at
// some instant, but the sequence as a whole is not atomic. This is the
// floor every implementation shares; adapters with a validated scan
// override and serve stronger levels.
std::size_t IDictionary::range(std::int64_t lo, std::int64_t hi,
                               const RangeVisitor& visit,
                               const ScanOptions& opts) const {
  if (hi < lo) return 0;
  std::size_t visited = 0;
  std::optional<Entry> cur;
  if (opts.reverse) {
    // Start at hi itself (pred is strict, and hi+1 may not exist).
    if (const auto v = find(hi)) cur = Entry{hi, *v};
    else cur = pred(hi);
    while (cur && cur->key >= lo) {
      if (opts.limit != 0 && visited == opts.limit) break;
      ++visited;
      if (!visit(cur->key, cur->value)) break;
      cur = pred(cur->key);
    }
    return visited;
  }
  // Start at lo itself (succ is strict, and lo-1 may not exist).
  if (const auto v = find(lo)) cur = Entry{lo, *v};
  else cur = succ(lo);
  while (cur && cur->key <= hi) {
    if (opts.limit != 0 && visited == opts.limit) break;
    ++visited;
    if (!visit(cur->key, cur->value)) break;
    cur = succ(cur->key);
  }
  return visited;
}

std::unique_ptr<ISnapshot> IDictionary::snapshot() const {
  return std::make_unique<WeakSnapshot>(*this);
}

namespace {

template <typename Rcu>
class RcuThreadScope final : public ThreadScope {
 public:
  explicit RcuThreadScope(Rcu& domain) : registration_(domain) {}

 private:
  typename Rcu::Registration registration_;
};

template <typename Key, typename Value>
std::optional<Entry> to_entry(std::optional<std::pair<Key, Value>> p) {
  if (!p) return std::nullopt;
  return Entry{static_cast<std::int64_t>(p->first),
               static_cast<std::int64_t>(p->second)};
}

// Adapter owning a domain and a tree built on it. `Tree` must be
// constructible from `Rcu&` and satisfy the ordered_dictionary concept.
template <typename Rcu, typename Tree>
class TreeAdapter final : public IDictionary {
  // Native validated scan, chunkable (Citrus): range(lo, hi, f, limit,
  // chunk) where chunk == 0 means one unbounded validated pass.
  static constexpr bool kHasChunkedRange =
      requires(const Tree& t, const typename Tree::key_type& k,
               bool (*f)(const typename Tree::key_type&,
                         const typename Tree::mapped_type&)) {
        { t.range(k, k, f, std::size_t{0}, std::size_t{0}) };
      };
  // Native single-pass scan (Bonsai: one walk of the published root).
  static constexpr bool kHasSnapshotRange =
      !kHasChunkedRange &&
      requires(const Tree& t, const typename Tree::key_type& k,
               bool (*f)(const typename Tree::key_type&,
                         const typename Tree::mapped_type&)) {
        { t.range(k, k, f, std::size_t{0}) };
      };
  // Native validated descending scan (Citrus): same shape as the chunked
  // ascending one. Strategies without it serve reverse at kWeak via the
  // pred-chain default.
  static constexpr bool kHasChunkedRangeDesc =
      requires(const Tree& t, const typename Tree::key_type& k,
               bool (*f)(const typename Tree::key_type&,
                         const typename Tree::mapped_type&)) {
        { t.range_desc(k, k, f, std::size_t{0}, std::size_t{0}) };
      };

 public:
  // Extra args are forwarded to the tree after the domain (e.g. the
  // relativistic hash table's initial bucket count).
  template <typename... Args>
  explicit TreeAdapter(std::string name, DictionaryTraits traits,
                       Args&&... args)
      : name_(std::move(name)),
        traits_(traits),
        tree_(domain_, std::forward<Args>(args)...) {}

  std::unique_ptr<ThreadScope> enter_thread() override {
    return std::make_unique<RcuThreadScope<Rcu>>(domain_);
  }

  bool insert(std::int64_t key, std::int64_t value) override {
    return tree_.insert(key, value);
  }
  bool erase(std::int64_t key) override { return tree_.erase(key); }
  std::optional<std::int64_t> find(std::int64_t key) const override {
    return tree_.find(key);
  }
  std::size_t size() const override { return tree_.size(); }

  // Surface the tree's status channel when it has one (Citrus); baselines
  // without allocation-failure handling keep the bool-mapping default.
  core::UpdateStatus try_insert(std::int64_t key, std::int64_t value) override {
    if constexpr (requires(Tree& t) {
                    { t.try_insert(key, value) }
                        -> std::convertible_to<core::UpdateStatus>;
                  }) {
      return tree_.try_insert(key, value);
    } else {
      return IDictionary::try_insert(key, value);
    }
  }
  core::UpdateStatus try_erase(std::int64_t key) override {
    if constexpr (requires(Tree& t) {
                    { t.try_erase(key) }
                        -> std::convertible_to<core::UpdateStatus>;
                  }) {
      return tree_.try_erase(key);
    } else {
      return IDictionary::try_erase(key);
    }
  }

  std::optional<Entry> succ(std::int64_t key) const override {
    return to_entry(tree_.succ(key));
  }
  std::optional<Entry> pred(std::int64_t key) const override {
    return to_entry(tree_.pred(key));
  }

  std::size_t range(std::int64_t lo, std::int64_t hi,
                    const RangeVisitor& visit,
                    const ScanOptions& opts) const override {
    if (opts.reverse) {
      if constexpr (kHasChunkedRangeDesc) {
        if (opts.consistency != ScanConsistency::kWeak) {
          const std::size_t chunk =
              opts.consistency == ScanConsistency::kSnapshot
                  ? 0
                  : (opts.chunk != 0 ? opts.chunk : Tree::kDefaultScanChunk);
          return tree_.range_desc(lo, hi, visit, opts.limit, chunk);
        }
      }
      return IDictionary::range(lo, hi, visit, opts);
    }
    if constexpr (kHasChunkedRange) {
      if (opts.consistency != ScanConsistency::kWeak) {
        // kSnapshot: one unbounded validated pass (chunk 0). kChunked:
        // bounded read-side sections of `chunk` keys with key-cursor
        // re-entry between them.
        const std::size_t chunk =
            opts.consistency == ScanConsistency::kSnapshot
                ? 0
                : (opts.chunk != 0 ? opts.chunk : Tree::kDefaultScanChunk);
        return tree_.range(lo, hi, visit, opts.limit, chunk);
      }
    } else if constexpr (kHasSnapshotRange) {
      if (opts.consistency != ScanConsistency::kWeak) {
        return tree_.range(lo, hi, visit, opts.limit);
      }
    }
    return IDictionary::range(lo, hi, visit, opts);
  }

  std::unique_ptr<ISnapshot> snapshot() const override {
    if constexpr (kHasChunkedRange || kHasSnapshotRange) {
      std::vector<Entry> entries;
      ScanOptions opts;
      opts.consistency = ScanConsistency::kSnapshot;
      this->range(
          std::numeric_limits<std::int64_t>::min(),
          std::numeric_limits<std::int64_t>::max(),
          [&entries](std::int64_t k, std::int64_t v) {
            entries.push_back({k, v});
            return true;
          },
          opts);
      return std::make_unique<VectorSnapshot>(std::move(entries),
                                              ScanConsistency::kSnapshot);
    } else {
      return IDictionary::snapshot();
    }
  }

  DictionaryTraits traits() const override { return traits_; }

  core::StructureReport check_structure() const override {
    if constexpr (requires(const Tree& t, std::string* e) {
                    { t.check_structure(e) } -> std::convertible_to<bool>;
                  }) {
      // Baselines report bool + message; lift into a StructureReport.
      // node_count stays 0: size() may itself need a registered RCU
      // read-side section (Bonsai), which the auditing thread need not
      // hold.
      core::StructureReport rep;
      rep.ok = tree_.check_structure(&rep.error);
      if (rep.ok) rep.error.clear();
      return rep;
    } else {
      return tree_.check_structure();
    }
  }

  StatsSnapshot stats() const override {
    StatsSnapshot snap;
    snap.grace_periods = domain_.synchronize_calls();
    if constexpr (requires(const Tree& t) {
                    { t.stats() } -> std::convertible_to<core::CitrusStats>;
                  }) {
      const core::CitrusStats s = tree_.stats();
      snap.insert_retries = s.insert_retries;
      snap.erase_retries = s.erase_retries;
      snap.lock_timeouts = s.lock_timeouts;
      snap.recycled_nodes = s.recycled_nodes;
      snap.gp_started = s.gp_started;
      snap.gp_shared = s.gp_shared;
      snap.gp_expedited = s.gp_expedited;
      snap.scans = s.scans;
      snap.scan_retries = s.scan_retries;
      snap.scan_keys_visited = s.scan_keys_visited;
      snap.cop_commits = s.cop_commits;
      snap.cop_aborts_htm = s.cop_aborts_htm;
      snap.cop_fallbacks = s.cop_fallbacks;
      snap.cop_validation_failures = s.cop_validation_failures;
      snap.maint_rebuilds = s.maint_rebuilds;
      snap.maint_validation_failures = s.maint_validation_failures;
      snap.maint_nodes_rebuilt = s.maint_nodes_rebuilt;
    }
    return snap;
  }

  std::string name() const override { return name_; }

 private:
  std::string name_;
  DictionaryTraits traits_;
  Rcu domain_;       // destroyed after the tree (declaration order)
  Tree tree_;
};

using Key = std::int64_t;
using Value = std::int64_t;

// Adapter over ShardedCitrus: N shards, each an independent (domain, tree)
// pair; a ThreadScope registers with all shard domains. TreeT picks the
// per-shard update protocol (lock+validate or cop).
template <typename Rcu, typename Traits,
          template <typename, typename, typename, typename>
          class TreeT = core::CitrusTree>
class ShardedAdapter final : public IDictionary {
  using Sharded = shard::ShardedCitrus<Key, Value, Rcu, Traits, TreeT>;

  class Scope final : public ThreadScope {
   public:
    explicit Scope(Sharded& dict) : registration_(dict) {}

   private:
    typename Sharded::Registration registration_;
  };

 public:
  ShardedAdapter(std::string name, DictionaryTraits traits, std::size_t shards)
      : name_(std::move(name)), traits_(traits), dict_(shards) {}

  std::unique_ptr<ThreadScope> enter_thread() override {
    return std::make_unique<Scope>(dict_);
  }

  bool insert(std::int64_t key, std::int64_t value) override {
    return dict_.insert(key, value);
  }
  bool erase(std::int64_t key) override { return dict_.erase(key); }
  std::optional<std::int64_t> find(std::int64_t key) const override {
    return dict_.find(key);
  }
  std::size_t size() const override { return dict_.size(); }

  core::UpdateStatus try_insert(std::int64_t key, std::int64_t value) override {
    return dict_.try_insert(key, value);
  }
  core::UpdateStatus try_erase(std::int64_t key) override {
    return dict_.try_erase(key);
  }

  std::optional<Entry> succ(std::int64_t key) const override {
    return to_entry(dict_.succ(key));
  }
  std::optional<Entry> pred(std::int64_t key) const override {
    return to_entry(dict_.pred(key));
  }

  std::size_t range(std::int64_t lo, std::int64_t hi,
                    const RangeVisitor& visit,
                    const ScanOptions& opts) const override {
    if (opts.consistency == ScanConsistency::kWeak) {
      return IDictionary::range(lo, hi, visit, opts);
    }
    // Shards are scanned one after another per merge round, so the merged
    // view is never atomic across shards: kChunked is this adapter's
    // ceiling and a kSnapshot request is served at kChunked.
    const std::size_t chunk =
        opts.chunk != 0 ? opts.chunk : Sharded::kDefaultScanChunk;
    if (opts.reverse) {
      return dict_.range_desc(lo, hi, visit, opts.limit, chunk);
    }
    return dict_.range(lo, hi, visit, opts.limit, chunk);
  }

  std::unique_ptr<ISnapshot> snapshot() const override {
    std::vector<Entry> entries;
    dict_.range(
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max(),
        [&entries](Key k, Value v) {
          entries.push_back({k, v});
          return true;
        },
        /*limit=*/0, /*chunk=*/0);
    return std::make_unique<VectorSnapshot>(std::move(entries),
                                            ScanConsistency::kChunked);
  }

  DictionaryTraits traits() const override { return traits_; }

  core::StructureReport check_structure() const override {
    return dict_.check_structure();
  }

  StatsSnapshot stats() const override {
    StatsSnapshot snap;
    snap.shards.reserve(dict_.shard_count());
    for (std::size_t i = 0; i < dict_.shard_count(); ++i) {
      const core::CitrusStats s = dict_.shard_stats(i);
      ShardStats out;
      out.grace_periods = dict_.shard_synchronize_calls(i);
      out.retries = s.insert_retries + s.erase_retries;
      out.lock_timeouts = s.lock_timeouts;
      out.recycled_nodes = s.recycled_nodes;
      out.gp_started = s.gp_started;
      out.gp_shared = s.gp_shared;
      out.scans = s.scans;
      out.scan_retries = s.scan_retries;
      out.cop_commits = s.cop_commits;
      out.cop_aborts_htm = s.cop_aborts_htm;
      out.cop_fallbacks = s.cop_fallbacks;
      out.cop_validation_failures = s.cop_validation_failures;
      out.maint_rebuilds = s.maint_rebuilds;
      out.maint_validation_failures = s.maint_validation_failures;
      out.maint_nodes_rebuilt = s.maint_nodes_rebuilt;
      out.size = dict_.shard_size(i);
      snap.grace_periods += out.grace_periods;
      snap.insert_retries += s.insert_retries;
      snap.erase_retries += s.erase_retries;
      snap.lock_timeouts += s.lock_timeouts;
      snap.recycled_nodes += s.recycled_nodes;
      snap.gp_started += s.gp_started;
      snap.gp_shared += s.gp_shared;
      snap.gp_expedited += s.gp_expedited;
      snap.scans += s.scans;
      snap.scan_retries += s.scan_retries;
      snap.scan_keys_visited += s.scan_keys_visited;
      snap.cop_commits += s.cop_commits;
      snap.cop_aborts_htm += s.cop_aborts_htm;
      snap.cop_fallbacks += s.cop_fallbacks;
      snap.cop_validation_failures += s.cop_validation_failures;
      snap.maint_rebuilds += s.maint_rebuilds;
      snap.maint_validation_failures += s.maint_validation_failures;
      snap.maint_nodes_rebuilt += s.maint_nodes_rebuilt;
      snap.shards.push_back(out);
    }
    return snap;
  }

  std::string name() const override { return name_; }

 private:
  std::string name_;
  DictionaryTraits traits_;
  Sharded dict_;
};

struct RegistryEntry {
  DictionaryFactory factory;
  DictionaryTraits traits;  // default-Options traits, for introspection
  // One representative per algorithm family (see DictionaryInfo).
  bool comparison = false;
};

constexpr DictionaryTraits kWeakTraits{false, false, ScanConsistency::kWeak};
constexpr DictionaryTraits kCitrusTraits{false, false,
                                         ScanConsistency::kSnapshot};

template <typename Rcu, typename Tree>
DictionaryFactory factory(const char* name, DictionaryTraits traits) {
  return [name, traits](const Options&) {
    return std::make_unique<TreeAdapter<Rcu, Tree>>(name, traits);
  };
}

// Citrus factories honor Options::reclaim by swapping the traits tier at
// construction time (the trait is compile-time, so both instantiations
// exist and the option picks one).
template <typename Rcu>
DictionaryFactory citrus_factory(const char* name, bool reclaim_default) {
  return [name, reclaim_default](const Options& options) -> std::unique_ptr<IDictionary> {
    const bool reclaim = options.reclaim.value_or(reclaim_default);
    DictionaryTraits traits = kCitrusTraits;
    traits.reclaiming = reclaim;
    if (reclaim) {
      return std::make_unique<TreeAdapter<
          Rcu, core::CitrusTree<Key, Value, Rcu, core::DefaultTraits>>>(
          name, traits);
    }
    return std::make_unique<TreeAdapter<
        Rcu, core::CitrusTree<Key, Value, Rcu, core::BenchTraits>>>(name,
                                                                    traits);
  };
}

// Optimistic cop protocol (citrus_cop.hpp); same Options::reclaim
// handling as citrus_factory.
template <typename Rcu>
DictionaryFactory cop_factory(const char* name, bool reclaim_default) {
  return [name, reclaim_default](const Options& options) -> std::unique_ptr<IDictionary> {
    const bool reclaim = options.reclaim.value_or(reclaim_default);
    DictionaryTraits traits = kCitrusTraits;
    traits.reclaiming = reclaim;
    if (reclaim) {
      return std::make_unique<TreeAdapter<
          Rcu, core::CitrusCopTree<Key, Value, Rcu, core::DefaultTraits>>>(
          name, traits);
    }
    return std::make_unique<TreeAdapter<
        Rcu, core::CitrusCopTree<Key, Value, Rcu, core::BenchTraits>>>(
        name, traits);
  };
}

// Citrus with the background structural maintainer (maint/citrus_cf.hpp);
// same Options::reclaim handling as citrus_factory, except the trait tiers
// are the maint:: ones (which force kMaintainerRecycles on so wait-free
// readers guard against the maintainer recycling replaced subtrees even in
// the leaky bench tier).
template <typename Rcu>
DictionaryFactory cf_factory(const char* name, bool reclaim_default) {
  return [name, reclaim_default](const Options& options) -> std::unique_ptr<IDictionary> {
    const bool reclaim = options.reclaim.value_or(reclaim_default);
    DictionaryTraits traits = kCitrusTraits;
    traits.reclaiming = reclaim;
    if (reclaim) {
      return std::make_unique<TreeAdapter<
          Rcu, maint::CitrusCfTree<Key, Value, Rcu, maint::CfDefaultTraits>>>(
          name, traits);
    }
    return std::make_unique<TreeAdapter<
        Rcu, maint::CitrusCfTree<Key, Value, Rcu, maint::CfBenchTraits>>>(
        name, traits);
  };
}

// Sharded Citrus: Options::shards (power of two) overrides the name's
// default count; Options::reclaim picks the traits tier as above. TreeT
// picks the per-shard update protocol.
template <template <typename, typename, typename, typename>
          class TreeT = core::CitrusTree>
DictionaryFactory sharded_factory(const char* name,
                                  std::size_t default_shards) {
  return [name, default_shards](const Options& options)
             -> std::unique_ptr<IDictionary> {
    std::size_t shards =
        options.shards != 0 ? options.shards : default_shards;
    if (!shard::is_power_of_two(shards)) {
      throw std::invalid_argument("shard count must be a power of two");
    }
    using rcu::CounterFlagRcu;
    const bool reclaim = options.reclaim.value_or(false);
    const DictionaryTraits traits{true, reclaim, ScanConsistency::kChunked};
    if (reclaim) {
      return std::make_unique<
          ShardedAdapter<CounterFlagRcu, core::DefaultTraits, TreeT>>(
          name, traits, shards);
    }
    return std::make_unique<
        ShardedAdapter<CounterFlagRcu, core::BenchTraits, TreeT>>(
        name, traits, shards);
  };
}

// Sharded cf: sharded_factory hardcodes the core:: trait tiers, but
// CitrusCfTree insists on the maint:: tiers (static_assert on
// kMaintainerRecycles), so the combination gets its own factory. One
// maintainer thread per shard.
DictionaryFactory cf_sharded_factory(const char* name,
                                     std::size_t default_shards) {
  return [name, default_shards](const Options& options)
             -> std::unique_ptr<IDictionary> {
    std::size_t shards =
        options.shards != 0 ? options.shards : default_shards;
    if (!shard::is_power_of_two(shards)) {
      throw std::invalid_argument("shard count must be a power of two");
    }
    using rcu::CounterFlagRcu;
    const bool reclaim = options.reclaim.value_or(false);
    const DictionaryTraits traits{true, reclaim, ScanConsistency::kChunked};
    if (reclaim) {
      return std::make_unique<ShardedAdapter<
          CounterFlagRcu, maint::CfDefaultTraits, maint::CitrusCfTree>>(
          name, traits, shards);
    }
    return std::make_unique<ShardedAdapter<
        CounterFlagRcu, maint::CfBenchTraits, maint::CitrusCfTree>>(
        name, traits, shards);
  };
}

// Citrus node-lock ablation traits.
struct CitrusMutexTraits : core::BenchTraits {
  using LockTag = sync::UseStdMutex;
};

const std::map<std::string, RegistryEntry>& registry() {
  using rcu::CounterFlagRcu;
  using rcu::EpochRcu;
  using rcu::QsbrRcu;
  using rcu::GlobalLockRcu;
  static const auto shard_traits =
      DictionaryTraits{true, false, ScanConsistency::kChunked};
  static const auto reclaim_traits =
      DictionaryTraits{false, true, ScanConsistency::kSnapshot};
  static const auto bonsai_traits =
      DictionaryTraits{false, false, ScanConsistency::kSnapshot};
  static const std::map<std::string, RegistryEntry> map = {
      {"citrus",
       {citrus_factory<CounterFlagRcu>("citrus", false), kCitrusTraits,
        true}},
      // A/B pair for the grace-period engine: "citrus-gpseq" is an
      // explicit alias of the default (shared gp_seq + hierarchical
      // scan), "citrus-flat" is the paper's flat per-call scan.
      {"citrus-gpseq",
       {citrus_factory<CounterFlagRcu>("citrus-gpseq", false),
        kCitrusTraits}},
      {"citrus-flat",
       {citrus_factory<rcu::FlatCounterFlagRcu>("citrus-flat", false),
        kCitrusTraits}},
      {"citrus-std-rcu",
       {citrus_factory<GlobalLockRcu>("citrus-std-rcu", false),
        kCitrusTraits}},
      {"citrus-epoch",
       {citrus_factory<EpochRcu>("citrus-epoch", false), kCitrusTraits}},
      {"citrus-qsbr",
       {citrus_factory<QsbrRcu>("citrus-qsbr", false), kCitrusTraits}},
      {"citrus-reclaim",
       {citrus_factory<CounterFlagRcu>("citrus-reclaim", true),
        reclaim_traits}},
      {"citrus-mutex",
       {factory<CounterFlagRcu, core::CitrusTree<Key, Value, CounterFlagRcu,
                                                 CitrusMutexTraits>>(
            "citrus-mutex", kCitrusTraits),
        kCitrusTraits}},
      // Optimistic copy-validate-publish protocol: its own algorithm
      // family (comparison=true), plus sharded ablation aliases.
      {"citrus-cop",
       {cop_factory<CounterFlagRcu>("citrus-cop", false), kCitrusTraits,
        true}},
      {"citrus-shard4", {sharded_factory("citrus-shard4", 4), shard_traits}},
      {"citrus-shard16",
       {sharded_factory("citrus-shard16", 16), shard_traits, true}},
      {"citrus-shard64",
       {sharded_factory("citrus-shard64", 64), shard_traits}},
      {"citrus-cop-shard4",
       {sharded_factory<core::CitrusCopTree>("citrus-cop-shard4", 4),
        shard_traits}},
      {"citrus-cop-shard16",
       {sharded_factory<core::CitrusCopTree>("citrus-cop-shard16", 16),
        shard_traits}},
      {"citrus-cop-shard64",
       {sharded_factory<core::CitrusCopTree>("citrus-cop-shard64", 64),
        shard_traits}},
      // Lock+validate updates plus a background structural maintainer
      // that rebuilds skew-degenerated subtrees: its own algorithm family.
      {"citrus-cf",
       {cf_factory<CounterFlagRcu>("citrus-cf", false), kCitrusTraits,
        true}},
      {"citrus-cf-shard4",
       {cf_sharded_factory("citrus-cf-shard4", 4), shard_traits}},
      {"citrus-cf-shard16",
       {cf_sharded_factory("citrus-cf-shard16", 16), shard_traits}},
      {"citrus-cf-shard64",
       {cf_sharded_factory("citrus-cf-shard64", 64), shard_traits}},
      {"rbtree",
       {factory<CounterFlagRcu,
                baselines::RcuRedBlackTree<Key, Value, CounterFlagRcu,
                                           baselines::RbBenchTraits>>(
            "rbtree", kWeakTraits),
        kWeakTraits, true}},
      {"bonsai",
       {factory<CounterFlagRcu,
                baselines::BonsaiTree<Key, Value, CounterFlagRcu,
                                      baselines::BonsaiBenchTraits>>(
            "bonsai", bonsai_traits),
        bonsai_traits, true}},
      {"avl",
       {factory<CounterFlagRcu,
                baselines::BronsonAvlTree<Key, Value, CounterFlagRcu,
                                          baselines::AvlBenchTraits>>(
            "avl", kWeakTraits),
        kWeakTraits, true}},
      {"lockfree",
       {factory<CounterFlagRcu,
                baselines::LockFreeBst<Key, Value, CounterFlagRcu,
                                       baselines::LfBstBenchTraits>>(
            "lockfree", kWeakTraits),
        kWeakTraits, true}},
      {"rcu-hash",
       {[](const Options& options) -> std::unique_ptr<IDictionary> {
          using Table =
              baselines::RelativisticHashTable<Key, Value, CounterFlagRcu,
                                               baselines::RelHashBenchTraits>;
          // ~8 expected keys per bucket at the hinted range's half-full
          // steady state; 0 falls back to the trait default.
          const std::size_t buckets =
              options.key_range_hint > 0
                  ? static_cast<std::size_t>(options.key_range_hint) / 16
                  : baselines::RelHashBenchTraits::kInitialBuckets;
          return std::make_unique<TreeAdapter<CounterFlagRcu, Table>>(
              "rcu-hash", kWeakTraits, buckets);
        },
        kWeakTraits, true}},
      {"skiplist",
       {factory<CounterFlagRcu,
                baselines::LazySkiplist<Key, Value, CounterFlagRcu,
                                        baselines::SkiplistBenchTraits>>(
            "skiplist", kWeakTraits),
        kWeakTraits, true}},
  };
  return map;
}

}  // namespace

std::vector<std::string> registered_dictionaries() {
  std::vector<std::string> names;
  for (const auto& [name, unused] : registry()) names.push_back(name);
  return names;
}

std::vector<DictionaryInfo> available_dictionaries() {
  std::vector<DictionaryInfo> infos;
  for (const auto& [name, entry] : registry()) {
    infos.push_back({name, entry.traits, entry.comparison});
  }
  return infos;
}

std::unique_ptr<IDictionary> make_dictionary(const std::string& name,
                                             const Options& options) {
  const auto& map = registry();
  const auto it = map.find(name);
  if (it == map.end()) {
    throw std::invalid_argument("unknown dictionary: " + name);
  }
  return it->second.factory(options);
}

std::unique_ptr<IDictionary> make_dictionary(const std::string& name) {
  return make_dictionary(name, Options{});
}

}  // namespace citrus::adapters
