// Cache-layout utilities.
//
// The paper's evaluation section notes that "the size of nodes, order of
// fields, and their alignment inside cache lines, often influences the
// results much more than the algorithmic aspects of the implementation".
// Everything that is written by one thread and spun on by another is padded
// to its own cache line (in fact to two lines, to defeat adjacent-line
// prefetching, which is why kDestructiveInterference is 128 on x86).
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <type_traits>

namespace citrus::sync {

// std::hardware_destructive_interference_size is 64 on most toolchains, but
// Intel/AMD prefetchers pull adjacent line pairs, so 128 is the safe value
// (this matches folly::cacheline_align and Linux's ____cacheline_aligned on
// some configs).
inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kDestructiveInterference = 128;

// A value padded out to occupy its own (double) cache line, so that
// per-thread hot fields (RCU reader words, spinlock states) never
// false-share.
template <typename T>
struct alignas(kDestructiveInterference) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Round sizeof(T) up to the alignment so arrays of Padded<T> place each
  // element on its own line even when T is small.
  static constexpr std::size_t padded_size() {
    return sizeof(T) >= kDestructiveInterference
               ? 0
               : kDestructiveInterference - sizeof(T);
  }
  [[maybe_unused]] std::byte pad_[padded_size() == 0 ? 1 : padded_size()];
};

static_assert(sizeof(Padded<std::atomic<std::uint64_t>>) >=
              kDestructiveInterference);
static_assert(alignof(Padded<int>) == kDestructiveInterference);

}  // namespace citrus::sync
