// Spin-wait backoff.
//
// Every wait loop in this code base must remain live when the machine is
// oversubscribed (more runnable threads than cores) — in the extreme, the
// reproduction box has a single core, so a synchronize_rcu spinning on a
// descheduled reader would otherwise burn its whole quantum doing nothing.
// The schedule is capped-exponential spin, then yield, then (far out on
// the tail) a short sleep:
//
//   rounds [0, spin_limit)        — bursts of cpu_relax(), burst length
//                                   doubling up to 2^max_burst_log2
//   rounds [spin_limit, +kYields) — sched yields (cede the core to the
//                                   reader we are waiting for)
//   beyond                        — 50us sleeps (a descheduled or
//                                   SIGSTOPped peer; stop churning the
//                                   run queue)
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace citrus::sync {

// Hint the CPU that we are in a spin loop (lowers power, frees pipeline
// resources for the sibling hyperthread). Falls back to a compiler barrier.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Capped-exponential spin-then-yield backoff. Usage:
//
//   Backoff bo;
//   while (!condition()) bo.pause();
class Backoff {
 public:
  // Yield rounds before escalating to sleeps. 256 yields ≈ a scheduler
  // quantum's worth of chances for the awaited thread to run.
  static constexpr std::uint32_t kYields = 256;

  // `spin_limit` is the number of pause() calls before we start yielding;
  // `max_burst_log2` caps the exponential burst growth (2^6 = 64 relax
  // instructions ≈ the cost of one cache miss, so a capped burst never
  // delays noticing the condition by more than a miss or two).
  explicit Backoff(std::uint32_t spin_limit = 64,
                   std::uint32_t max_burst_log2 = 6) noexcept
      : spin_limit_(spin_limit), max_burst_log2_(max_burst_log2) {}

  void pause() noexcept {
    ++total_;
    if (rounds_ < spin_limit_) {
      const std::uint32_t shift =
          rounds_ < max_burst_log2_ ? rounds_ : max_burst_log2_;
      const std::uint32_t burst = 1u << shift;
      for (std::uint32_t i = 0; i < burst; ++i) cpu_relax();
      ++rounds_;
    } else if (rounds_ - spin_limit_ < kYields) {
      std::this_thread::yield();
      ++rounds_;
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void reset() noexcept { rounds_ = 0; }

  // pause(), then report whether the deadline has not yet passed. For
  // loops of the shape "wait for X, but never past T":
  //
  //   Backoff bo;
  //   while (!condition() && bo.pause_until(deadline)) {}
  //
  // The clock is read after the pause, so a false return guarantees the
  // deadline has really elapsed (the wait never under-runs it).
  [[nodiscard]] bool pause_until(
      std::chrono::steady_clock::time_point deadline) noexcept {
    pause();
    return std::chrono::steady_clock::now() < deadline;
  }

  // Number of times pause() was called since construction/reset. Useful for
  // statistics (e.g. how long synchronize_rcu waited).
  std::uint64_t total() const noexcept { return total_; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t max_burst_log2_;
  std::uint32_t rounds_ = 0;
  std::uint64_t total_ = 0;
};

// Deadline-bounded wait: spin (with the standard backoff schedule) until
// `pred()` returns true or `deadline` passes. Returns the final pred()
// value — true means the condition was met in time, false means the
// deadline elapsed with the condition still false. Used by the stall
// watchdog and the reclaimer's backpressure wait, where a wait that can
// hang forever is exactly the failure mode being defended against.
//
// `pred` is evaluated at least once even if the deadline is already in
// the past, so an already-true condition never reports a timeout.
template <typename Pred>
[[nodiscard]] bool spin_until(std::chrono::steady_clock::time_point deadline,
                              Pred&& pred) {
  Backoff bo;
  while (!pred()) {
    if (!bo.pause_until(deadline)) return pred();
  }
  return true;
}

}  // namespace citrus::sync
