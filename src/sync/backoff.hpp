// Spin-wait backoff.
//
// Every wait loop in this code base must remain live when the machine is
// oversubscribed (more runnable threads than cores) — in the extreme, the
// reproduction box has a single core, so a synchronize_rcu spinning on a
// descheduled reader would otherwise burn its whole quantum doing nothing.
// Backoff spins with a pause instruction for a bounded number of rounds and
// then starts yielding to the scheduler.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace citrus::sync {

// Hint the CPU that we are in a spin loop (lowers power, frees pipeline
// resources for the sibling hyperthread). Falls back to a compiler barrier.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Exponential pause backoff that escalates to sched yields. Usage:
//
//   Backoff bo;
//   while (!condition()) bo.pause();
class Backoff {
 public:
  // `spin_limit` is the number of pause() calls before we start yielding.
  explicit Backoff(std::uint32_t spin_limit = 64) noexcept
      : spin_limit_(spin_limit) {}

  void pause() noexcept {
    ++total_;
    if (rounds_ < spin_limit_) {
      // Exponentially growing burst of relax instructions, capped.
      std::uint32_t burst = 1u << (rounds_ < 6 ? rounds_ : 6);
      for (std::uint32_t i = 0; i < burst; ++i) cpu_relax();
      ++rounds_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { rounds_ = 0; }

  // Number of times pause() was called since construction/reset. Useful for
  // statistics (e.g. how long synchronize_rcu waited).
  std::uint64_t total() const noexcept { return total_; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t rounds_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace citrus::sync
