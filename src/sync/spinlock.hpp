// Per-node locks.
//
// Citrus acquires locks on at most five nodes per update (prev, curr,
// prevSucc, succ and the freshly created copy), holds them across a
// synchronize_rcu in the two-child delete case, and releases them in bulk.
// The paper's C implementation used pthread mutexes; we default to a
// test-and-test-and-set spinlock with yield backoff, which behaves better
// under the short critical sections of insert and one-child delete, and fall
// back to yielding so two-child deletes (which block on a grace period while
// holding locks) do not starve the lock holders on an oversubscribed box.
// bench/ablation_lock_type measures the difference against std::mutex.
#pragma once

#include <atomic>
#include <mutex>

#include "sync/backoff.hpp"

namespace citrus::sync {

// Test-and-test-and-set spinlock. One byte of state; satisfies the C++
// Lockable requirements so it can be used with std::lock_guard/scoped_lock.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    Backoff bo;
    for (;;) {
      // Test first: spin on a read so the line stays shared until free.
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// Tag types selecting a node-lock implementation in the tree Traits.
struct UseSpinLock {
  using type = SpinLock;
};
struct UseStdMutex {
  using type = std::mutex;
};

}  // namespace citrus::sync
