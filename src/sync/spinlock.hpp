// Per-node locks.
//
// Citrus acquires locks on at most five nodes per update (prev, curr,
// prevSucc, succ and the freshly created copy), holds them across a
// synchronize_rcu in the two-child delete case, and releases them in bulk.
// The paper's C implementation used pthread mutexes; we default to a
// test-and-test-and-set spinlock with yield backoff, which behaves better
// under the short critical sections of insert and one-child delete, and fall
// back to yielding so two-child deletes (which block on a grace period while
// holding locks) do not starve the lock holders on an oversubscribed box.
// bench/ablation_lock_type measures the difference against std::mutex.
#pragma once

#include <atomic>
#include <mutex>

#include "check/check.hpp"
#include "sync/backoff.hpp"

namespace citrus::sync {

// Test-and-test-and-set spinlock. One byte of state; satisfies the C++
// Lockable requirements so it can be used with std::lock_guard/scoped_lock.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    Backoff bo;
    for (;;) {
      // Test first: spin on a read so the line stays shared until free.
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  // Lock subscription for the HTM fast path (citrus_cop.hpp): reading the
  // lock word inside a transaction puts it in the read-set, so a holder
  // showing up later aborts the transaction instead of racing it. Outside
  // a transaction this is only a hint and must not be used for mutual
  // exclusion.
  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

// rcucheck instrumentation shim for *node* locks: reports every
// acquisition/release to the per-thread held-lock set, which is how the
// checker detects unlock-without-lock, cross-thread unlock, and
// synchronize-while-locked (check/check.hpp). Internal infrastructure
// locks (pool shards, retire queues) stay on the raw SpinLock — they are
// not part of the paper's node-locking protocol and must not suppress the
// deref-outside-critical-section check.
template <typename Base>
class CheckedLock {
 public:
  CheckedLock() = default;
  CheckedLock(const CheckedLock&) = delete;
  CheckedLock& operator=(const CheckedLock&) = delete;

  void lock() {
    base_.lock();
    check::on_node_lock(this);
  }

  bool try_lock() {
    if (!base_.try_lock()) return false;
    check::on_node_lock(this);
    return true;
  }

  void unlock() {
    // Report before releasing so an abort-mode sink fires while the state
    // that proves the violation still exists.
    check::on_node_unlock(this);
    base_.unlock();
  }

  // Pass-through subscription hint where the base lock exposes one. (The
  // cop tree never takes the HTM path in checked builds — the hooks are
  // transaction-hostile — but the accessor keeps the two lock flavors
  // interface-compatible.)
  bool is_locked() const noexcept
    requires requires(const Base& b) { b.is_locked(); }
  {
    return base_.is_locked();
  }

 private:
  Base base_;
};

// Tag types selecting a node-lock implementation in the tree Traits. Under
// CITRUS_RCU_CHECK the node locks are wrapped in the instrumentation shim;
// otherwise they are the raw lock types (identical codegen to a build
// without the checker).
#if CITRUS_RCU_CHECK
struct UseSpinLock {
  using type = CheckedLock<SpinLock>;
};
struct UseStdMutex {
  using type = CheckedLock<std::mutex>;
};
#else
struct UseSpinLock {
  using type = SpinLock;
};
struct UseStdMutex {
  using type = std::mutex;
};
#endif

}  // namespace citrus::sync
