// Sense-reversing centralized barrier.
//
// Used by the workload runner to release all worker threads at once (so the
// measured interval does not include thread start-up skew) and by the stress
// tests to align phases. std::barrier exists in C++20 but its completion
// step machinery is more than we need, and this version exposes the
// generation counter, which the tests use.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/backoff.hpp"

namespace citrus::sync {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) noexcept : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  // Blocks until `parties` threads have arrived. Safe for repeated use.
  void arrive_and_wait() noexcept {
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    Backoff bo;
    while (generation_.load(std::memory_order_acquire) == gen) bo.pause();
  }

  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace citrus::sync
